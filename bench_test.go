// Benchmarks regenerating the paper's tables and figures (one benchmark
// family per figure; see DESIGN.md for the index). Each iteration runs a
// full simulation of one (system, workload) cell at the "tiny" scale so
// `go test -bench .` stays tractable; the figure-accurate "medium" scale
// runs through cmd/chats-experiments. Reported metrics:
//
//	simcycles/op   simulated execution time (the figures' y-axis)
//	aborts/op      aborted transaction attempts
//	commits/op     committed transactions
//	flits/op       interconnect flits (Fig. 7's y-axis)
package chats_test

import (
	"fmt"
	"testing"

	"chats"
	"chats/internal/workloads"
)

func benchCfg(system chats.SystemKind) chats.Config {
	cfg := chats.DefaultConfig()
	cfg.System = system
	cfg.Machine.CycleLimit = 500_000_000
	return cfg
}

// runCell simulates one cell and reports the figure metrics.
func runCell(b *testing.B, cfg chats.Config, bench string, size workloads.Size) {
	b.Helper()
	var last chats.Stats
	for i := 0; i < b.N; i++ {
		w, err := workloads.New(bench, size)
		if err != nil {
			b.Fatal(err)
		}
		last, err = chats.Run(cfg, w)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(last.Cycles), "simcycles/op")
	b.ReportMetric(float64(last.Aborts), "aborts/op")
	b.ReportMetric(float64(last.Commits), "commits/op")
	b.ReportMetric(float64(last.Flits), "flits/op")
}

// BenchmarkFig01NaiveRS regenerates Fig. 1: the naive requester-
// speculates design vs the requester-wins baseline.
func BenchmarkFig01NaiveRS(b *testing.B) {
	for _, system := range []chats.SystemKind{chats.Baseline, chats.NaiveRS} {
		for _, bench := range workloads.AllNames() {
			b.Run(string(system)+"/"+bench, func(b *testing.B) {
				runCell(b, benchCfg(system), bench, workloads.Tiny)
			})
		}
	}
}

// BenchmarkFig04ExecTime regenerates Fig. 4: execution time of every
// evaluated system on every benchmark.
func BenchmarkFig04ExecTime(b *testing.B) {
	for _, system := range []chats.SystemKind{chats.Baseline, chats.NaiveRS, chats.CHATS, chats.Power, chats.PCHATS} {
		for _, bench := range workloads.AllNames() {
			b.Run(string(system)+"/"+bench, func(b *testing.B) {
				runCell(b, benchCfg(system), bench, workloads.Tiny)
			})
		}
	}
}

// BenchmarkFig05Aborts regenerates Fig. 5's series (the aborts/op metric
// is the figure's y-axis; the per-cause split prints via
// cmd/chats-experiments -fig 5).
func BenchmarkFig05Aborts(b *testing.B) {
	for _, system := range []chats.SystemKind{chats.Baseline, chats.CHATS, chats.PCHATS} {
		for _, bench := range []string{"genome", "intruder", "kmeans-h", "yada"} {
			b.Run(string(system)+"/"+bench, func(b *testing.B) {
				runCell(b, benchCfg(system), bench, workloads.Tiny)
			})
		}
	}
}

// BenchmarkFig06Forwarded regenerates Fig. 6's series: the share of
// conflicting transactions that forwarded data and how they finished.
func BenchmarkFig06Forwarded(b *testing.B) {
	for _, bench := range []string{"genome", "kmeans-h", "yada", "cadd"} {
		b.Run("chats/"+bench, func(b *testing.B) {
			cfg := benchCfg(chats.CHATS)
			var last chats.Stats
			for i := 0; i < b.N; i++ {
				w, err := workloads.New(bench, workloads.Tiny)
				if err != nil {
					b.Fatal(err)
				}
				last, err = chats.Run(cfg, w)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(last.ForwarderCommitted), "fwd-committed/op")
			b.ReportMetric(float64(last.ForwarderAborted), "fwd-aborted/op")
			b.ReportMetric(float64(last.ConflictedCommitted), "conf-committed/op")
			b.ReportMetric(float64(last.ConflictedAborted), "conf-aborted/op")
		})
	}
}

// BenchmarkFig07Flits regenerates Fig. 7: interconnect flits.
func BenchmarkFig07Flits(b *testing.B) {
	for _, system := range []chats.SystemKind{chats.Baseline, chats.NaiveRS, chats.CHATS, chats.PCHATS} {
		for _, bench := range []string{"kmeans-h", "intruder", "yada"} {
			b.Run(string(system)+"/"+bench, func(b *testing.B) {
				runCell(b, benchCfg(system), bench, workloads.Tiny)
			})
		}
	}
}

// BenchmarkFig08ForwardModes regenerates Fig. 8: which blocks are
// eligible for forwarding (R/W vs W vs Rrestrict/W) — also the paper's
// forwarding-eligibility ablation.
func BenchmarkFig08ForwardModes(b *testing.B) {
	modes := []struct {
		name string
		set  func(*chats.Traits)
	}{
		{"RW", func(t *chats.Traits) { t.ForwardMode = 0 }},
		{"W", func(t *chats.Traits) { t.ForwardMode = 1 }},
		{"RrestrictW", func(t *chats.Traits) { t.ForwardMode = 2 }},
	}
	for _, m := range modes {
		for _, bench := range []string{"genome", "kmeans-h", "yada"} {
			b.Run(m.name+"/"+bench, func(b *testing.B) {
				cfg := benchCfg(chats.CHATS)
				traits, err := chats.SystemTraits(chats.CHATS)
				if err != nil {
					b.Fatal(err)
				}
				m.set(&traits)
				cfg.Traits = &traits
				runCell(b, cfg, bench, workloads.Tiny)
			})
		}
	}
}

// BenchmarkFig09Retries regenerates Fig. 9: retry-threshold sensitivity.
func BenchmarkFig09Retries(b *testing.B) {
	for _, system := range []chats.SystemKind{chats.Baseline, chats.CHATS, chats.PCHATS} {
		for _, retries := range []int{1, 2, 6, 32, 64} {
			b.Run(fmt.Sprintf("%s/r=%d", system, retries), func(b *testing.B) {
				cfg := benchCfg(system)
				traits, err := chats.SystemTraits(system)
				if err != nil {
					b.Fatal(err)
				}
				traits.Retries = retries
				cfg.Traits = &traits
				runCell(b, cfg, "kmeans-h", workloads.Tiny)
			})
		}
	}
}

// BenchmarkFig10VSBSweep regenerates Fig. 10: VSB size × validation
// interval — also the VSB-capacity ablation.
func BenchmarkFig10VSBSweep(b *testing.B) {
	for _, vsb := range []int{1, 4, 32} {
		for _, interval := range []uint64{50, 200} {
			b.Run(fmt.Sprintf("vsb=%d/val=%d", vsb, interval), func(b *testing.B) {
				cfg := benchCfg(chats.CHATS)
				traits, err := chats.SystemTraits(chats.CHATS)
				if err != nil {
					b.Fatal(err)
				}
				traits.VSBSize = vsb
				traits.ValidationInterval = interval
				cfg.Traits = &traits
				runCell(b, cfg, "yada", workloads.Tiny)
			})
		}
	}
}

// BenchmarkFig11LEVC regenerates Fig. 11: CHATS and PCHATS vs the
// idealized LEVC adaptation.
func BenchmarkFig11LEVC(b *testing.B) {
	for _, system := range []chats.SystemKind{chats.Baseline, chats.LEVC, chats.CHATS, chats.PCHATS} {
		for _, bench := range []string{"intruder", "kmeans-h", "yada"} {
			b.Run(string(system)+"/"+bench, func(b *testing.B) {
				runCell(b, benchCfg(system), bench, workloads.Tiny)
			})
		}
	}
}

// BenchmarkAblationPiC isolates the PiC mechanism: CHATS (PiC cycle
// avoidance) vs NaiveRS (same forwarding machinery, counter-based escape
// instead of PiC) on the chained-add pattern where cycles actually form.
func BenchmarkAblationPiC(b *testing.B) {
	for _, system := range []chats.SystemKind{chats.CHATS, chats.NaiveRS} {
		for _, bench := range []string{"yada", "cadd", "llb-h"} {
			b.Run(string(system)+"/"+bench, func(b *testing.B) {
				runCell(b, benchCfg(system), bench, workloads.Tiny)
			})
		}
	}
}

// BenchmarkScalability is an extension beyond the paper's 16-core
// evaluation (Section VI-C fixes 16 threads because STAMP scales poorly
// past that): CHATS vs baseline as the core count grows on the
// forwarding-friendly kmeans-h kernel.
func BenchmarkScalability(b *testing.B) {
	for _, system := range []chats.SystemKind{chats.Baseline, chats.CHATS} {
		for _, cores := range []int{2, 4, 8, 16, 32} {
			b.Run(fmt.Sprintf("%s/cores=%d", system, cores), func(b *testing.B) {
				cfg := benchCfg(system)
				cfg.Machine.Cores = cores
				runCell(b, cfg, "kmeans-h", workloads.Tiny)
			})
		}
	}
}
